package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		Kind(9):    "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v", got)
	}
	if got := Int(7).AsFloat(); got != 7.0 {
		t.Errorf("Int(7).AsFloat() = %v, want widened 7.0", got)
	}
	if got := String("hi").AsString(); got != "hi" {
		t.Errorf("String(hi).AsString() = %q", got)
	}
	if Bool(true) != Int(1) || Bool(false) != Int(0) {
		t.Error("Bool encoding wrong")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not NULL")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { String("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsFloat on null", func() { Null.AsFloat() })
}

func TestText(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, ""},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{String("plated brass"), "plated brass"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("%v.Text() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	if got := String("O'Hare").String(); got != "'O''Hare'" {
		t.Errorf("quoting: got %q", got)
	}
	if got := Null.String(); got != "NULL" {
		t.Errorf("Null.String() = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// NULL sorts first; ints and floats interleave by numeric value;
	// strings after numbers (kind tag order).
	vals := []Value{String("b"), Int(3), Null, Float(2.5), Int(2), String("a"), Float(3)}
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	want := []Value{Null, Int(2), Float(2.5), Int(3), Float(3), String("a"), String("b")}
	for i := range want {
		if Compare(vals[i], want[i]) != 0 || vals[i].Kind() != want[i].Kind() && !(vals[i].numeric() && want[i].numeric()) {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, vals[i], want[i], vals)
		}
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) != Float(2.0)")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("Int(2) should sort before Float(2.5)")
	}
	if Compare(Float(2.5), Int(2)) != 1 {
		t.Error("Float(2.5) should sort after Int(2)")
	}
}

func TestSQLEqualitySemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false in joins")
	}
	if Equal(Null, Int(1)) || Equal(Int(1), Null) {
		t.Error("NULL = x must be false")
	}
	if !Equal(Int(5), Int(5)) {
		t.Error("5 = 5 must hold")
	}
	if !Identical(Null, Null) {
		t.Error("Identical(NULL, NULL) must be true for group detection")
	}
	if Identical(Null, Int(0)) {
		t.Error("Identical(NULL, 0) must be false")
	}
	if !Identical(String("x"), String("x")) {
		t.Error("Identical on equal strings")
	}
}

func TestHashKeyAgreesWithEquality(t *testing.T) {
	pool := []Value{Int(1), Int(2), Float(1), Float(1.5), String("1"), String("a"), Int(-1)}
	for _, a := range pool {
		for _, b := range pool {
			eq := Equal(a, b)
			hk := a.HashKey() == b.HashKey()
			if eq != hk {
				t.Errorf("Equal(%v,%v)=%v but HashKey match=%v", a, b, eq, hk)
			}
		}
	}
}

func TestHashKeyNullNeverMatches(t *testing.T) {
	// NULL's hash key must not collide with any value a query can produce;
	// it maps to a reserved key the engine never probes with.
	for _, v := range []Value{Int(0), Float(0), String(""), String("N")} {
		if v.HashKey() == Null.HashKey() {
			t.Errorf("NULL hash key collides with %v", v)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null},
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.25", Float(3.25)},
		{"plated brass", String("plated brass")},
		{"12abc", String("12abc")},
	}
	for _, c := range cases {
		got := Parse(c.in)
		if got.Kind() != c.want.Kind() || !Identical(got, c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v", c.in, got, got.Kind(), c.want)
		}
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	vals := []Value{Null, Int(7), Float(math.Pi), String(""), String("hello world")}
	for _, v := range vals {
		enc := v.AppendEncode(nil)
		if len(enc) != v.WireSize() {
			t.Errorf("%v: WireSize=%d but encoding is %d bytes", v, v.WireSize(), len(enc))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{Null, Int(0), Int(-1 << 62), Float(-0.5), Float(math.Inf(1)), String(""), String("ünïcode ✓")}
	for _, v := range vals {
		enc := v.AppendEncode(nil)
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Errorf("Decode(%v) consumed %d of %d bytes", v, n, len(enc))
		}
		if got.Kind() != v.Kind() || !Identical(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},                     // empty
		{'I', 0, 0},            // short int
		{'F', 0},               // short float
		{'S', 0, 0},            // short string header
		{'S', 0, 0, 0, 5, 'a'}, // short string payload
		{'Z'},                  // unknown tag
	}
	for _, b := range bad {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", b)
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	row := []Value{Int(1), Null, String("USA"), Float(904.00), Null}
	enc := EncodeRow(nil, row)
	dec, err := DecodeRow(enc, len(row))
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !Identical(dec[i], row[i]) {
			t.Errorf("column %d: %v != %v", i, dec[i], row[i])
		}
	}
	if _, err := DecodeRow(enc, len(row)-1); err == nil {
		t.Error("DecodeRow with trailing bytes succeeded")
	}
	if _, err := DecodeRow(enc[:len(enc)-1], len(row)); err == nil {
		t.Error("DecodeRow with truncated buffer succeeded")
	}
}

// quickValue builds an arbitrary Value from generator-provided raw parts.
func quickValue(kind uint8, i int64, f float64, s string) Value {
	switch kind % 4 {
	case 0:
		return Null
	case 1:
		return Int(i)
	case 2:
		if math.IsNaN(f) {
			f = 0 // NaN breaks total-order laws by design of IEEE; exclude.
		}
		return Float(f)
	default:
		return String(s)
	}
}

func TestQuickEncodeDecodeIdentity(t *testing.T) {
	prop := func(kind uint8, i int64, f float64, s string) bool {
		v := quickValue(kind, i, f, s)
		got, n, err := Decode(v.AppendEncode(nil))
		return err == nil && n == v.WireSize() && Identical(got, v) && got.Kind() == v.Kind()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	prop := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a := quickValue(k1, i1, f1, s1)
		b := quickValue(k2, i2, f2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitiveOnTriples(t *testing.T) {
	prop := func(k1, k2, k3 uint8, i1, i2, i3 int64, s1, s2, s3 string) bool {
		a := quickValue(k1, i1, 0, s1)
		b := quickValue(k2, i2, 0, s2)
		c := quickValue(k3, i3, 0, s3)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHashKeyConsistentWithEqual(t *testing.T) {
	prop := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a := quickValue(k1, i1, f1, s1)
		b := quickValue(k2, i2, f2, s2)
		if Equal(a, b) {
			return a.HashKey() == b.HashKey()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
