package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire encoding of a single value:
//
//	tag byte: 'N' null | 'I' int64 | 'F' float64 | 'S' string
//	int64/float64: 8 bytes big-endian
//	string: uint32 big-endian length, then bytes
//
// The encoding is deliberately uncompressed: the paper's "total time"
// includes JDBC bind and transfer costs that grow with tuple width, and a
// faithful reproduction must charge per column, nulls included.

const (
	tagNull   = 'N'
	tagInt    = 'I'
	tagFloat  = 'F'
	tagString = 'S'
)

// AppendEncode appends the wire encoding of v to dst and returns the
// extended slice.
func (v Value) AppendEncode(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindInt:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = append(dst, tagString)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
		return append(dst, v.s...)
	}
	return append(dst, tagNull)
}

// Decode reads one value from the front of buf, returning the value and the
// number of bytes consumed.
func Decode(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("value: decode on empty buffer")
	}
	switch buf[0] {
	case tagNull:
		return Null, 1, nil
	case tagInt:
		if len(buf) < 9 {
			return Null, 0, fmt.Errorf("value: short int encoding (%d bytes)", len(buf))
		}
		return Int(int64(binary.BigEndian.Uint64(buf[1:9]))), 9, nil
	case tagFloat:
		if len(buf) < 9 {
			return Null, 0, fmt.Errorf("value: short float encoding (%d bytes)", len(buf))
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(buf[1:9]))), 9, nil
	case tagString:
		if len(buf) < 5 {
			return Null, 0, fmt.Errorf("value: short string header (%d bytes)", len(buf))
		}
		n := int(binary.BigEndian.Uint32(buf[1:5]))
		if len(buf) < 5+n {
			return Null, 0, fmt.Errorf("value: short string payload (want %d, have %d)", n, len(buf)-5)
		}
		return String(string(buf[5 : 5+n])), 5 + n, nil
	default:
		return Null, 0, fmt.Errorf("value: unknown tag %q", buf[0])
	}
}

// EncodeRow appends the encodings of all values in row to dst.
func EncodeRow(dst []byte, row []Value) []byte {
	for _, v := range row {
		dst = v.AppendEncode(dst)
	}
	return dst
}

// DecodeRowPrefix decodes exactly n values from the front of buf, returning
// the row and the number of bytes consumed. Unlike DecodeRow it permits
// trailing bytes, so several rows can be packed into one wire frame and
// peeled off one at a time.
func DecodeRowPrefix(buf []byte, n int) ([]Value, int, error) {
	row := make([]Value, 0, n)
	used := 0
	for i := 0; i < n; i++ {
		v, u, err := Decode(buf[used:])
		if err != nil {
			return nil, 0, fmt.Errorf("value: column %d: %w", i, err)
		}
		row = append(row, v)
		used += u
	}
	return row, used, nil
}

// DecodeRow decodes exactly n values from buf. It returns an error if buf
// holds fewer than n encodings or has trailing bytes.
func DecodeRow(buf []byte, n int) ([]Value, error) {
	row, used, err := DecodeRowPrefix(buf, n)
	if err != nil {
		return nil, err
	}
	if used != len(buf) {
		return nil, fmt.Errorf("value: %d trailing bytes after %d columns", len(buf)-used, n)
	}
	return row, nil
}
