// Package value implements the typed, nullable scalar values that flow
// through every layer of SilkRoute: the relational engine, the wire
// protocol, the partitioned tuple streams, and the XML tagger.
//
// A Value is a small immutable struct. The zero Value is NULL, which makes
// padded outer-union tuples cheap to construct: extending a row with zero
// Values is exactly the SQL "null as col" padding the paper's unified plans
// require.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The four kinds of values the SQL subset manipulates. Null sorts before
// every non-null value, mirroring the "NULLS FIRST" behaviour the paper's
// structural sort relies on (absent optional children sort before present
// ones, which keeps parents adjacent to their children in document order).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one typed nullable scalar. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns an integer-encoded boolean (1 or 0); the SQL subset has no
// native boolean column type.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics on non-integer values so
// that type-confusion bugs surface immediately rather than as silent zeros.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. Integers widen;
// other kinds panic.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
}

// AsString returns the string payload. It panics on non-string values.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// Text renders the value the way the XML tagger emits it: NULL becomes the
// empty string, numbers use their shortest exact representation.
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	}
	return ""
}

// String implements fmt.Stringer with a SQL-literal flavour, used by plan
// and row debugging output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return "?"
}

// numeric reports whether the value is an int or float.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare defines the total order used by the engine's ORDER BY and by the
// tagger's k-way merge: NULL < every non-null; numerics compare by value
// (ints and floats are mutually comparable); strings compare
// lexicographically; across non-comparable kinds, the kind tag breaks the
// tie so the order stays total.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	// Incomparable kinds: order by kind tag to keep the order total.
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality semantics for joins and filters: NULL never
// equals anything, including NULL.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// Identical reports whether two values are the same value, treating NULL as
// identical to NULL. The tagger uses this to detect group boundaries, where
// two absent optional children must compare as the same group.
func Identical(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// HashKey returns a string that is equal for equal values and distinct for
// distinct values, suitable as a map key in hash joins. NULL gets a key that
// never matches (callers must exclude NULLs per SQL join semantics before
// probing, and the engine does).
func (v Value) HashKey() string {
	return string(v.AppendHashKey(nil))
}

// AppendHashKey appends the HashKey bytes of v to dst and returns the
// extended slice. Hot paths (hash joins, distinct counting) build composite
// keys into a reusable scratch buffer with it and probe maps through the
// allocation-free map[string(buf)] form instead of materializing a string
// per row.
func (v Value) AppendHashKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0, 'N')
	case KindInt:
		dst = append(dst, 0, 'I')
		return strconv.AppendInt(dst, v.i, 10)
	case KindFloat:
		// Normalize integral floats to the int representation so 1 and 1.0
		// hash identically, matching Compare.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			dst = append(dst, 0, 'I')
			return strconv.AppendInt(dst, int64(v.f), 10)
		}
		dst = append(dst, 0, 'F')
		return strconv.AppendFloat(dst, v.f, 'b', -1, 64)
	case KindString:
		dst = append(dst, 0, 'S')
		return append(dst, v.s...)
	}
	return append(dst, 0, '?')
}

// Parse converts a CSV/text field into a Value, inferring the narrowest
// type: empty string parses as NULL, then integer, then float, then string.
// The TPC-H loader and the CSV import path use it.
func Parse(s string) Value {
	if s == "" {
		return Null
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	return String(s)
}

// WireSize returns the number of bytes the value occupies in the wire
// protocol's row encoding (tag byte plus payload). Null values still cost a
// tag byte, which is what makes null-padded outer-union rows genuinely more
// expensive to transfer — the effect the paper measures.
func (v Value) WireSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 1 + 8
	case KindString:
		return 1 + 4 + len(v.s)
	}
	return 1
}
