package sqlgen

import (
	"strings"
	"testing"

	"silkroute/internal/rxl"
	"silkroute/internal/sqlast"
	"silkroute/internal/sqlparse"
	"silkroute/internal/tpch"
	"silkroute/internal/viewtree"
)

func fragTree(t *testing.T) *viewtree.Tree {
	t.Helper()
	q, err := rxl.Parse(rxl.FragmentSource)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := viewtree.Build(q, tpch.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func gen1(t *testing.T, tree *viewtree.Tree, keep []bool, reduce bool, style Style) []*Stream {
	t.Helper()
	comps, err := tree.Partition(keep, reduce)
	if err != nil {
		t.Fatal(err)
	}
	streams, err := Generate(tree, comps, style)
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

func TestStyleString(t *testing.T) {
	if OuterJoin.String() != "outer-join" || OuterUnion.String() != "outer-union" {
		t.Error("style names wrong")
	}
}

func TestFullyPartitionedNeedsNoJoinsOrUnions(t *testing.T) {
	tree := fragTree(t)
	streams := gen1(t, tree, tree.NoEdges(), false, OuterJoin)
	if len(streams) != 3 {
		t.Fatalf("streams = %d", len(streams))
	}
	for _, s := range streams {
		sql := s.SQL()
		if strings.Contains(sql, "outer join") || strings.Contains(sql, "union") {
			t.Errorf("fully partitioned stream uses join/union constructs: %s", sql)
		}
	}
}

func TestUnifiedPlanUsesOuterJoinAndUnion(t *testing.T) {
	tree := fragTree(t)
	streams := gen1(t, tree, tree.AllEdges(), false, OuterJoin)
	if len(streams) != 1 {
		t.Fatalf("streams = %d", len(streams))
	}
	sql := streams[0].SQL()
	if !strings.Contains(sql, "left outer join") {
		t.Errorf("unified plan lacks outer join: %s", sql)
	}
	if !strings.Contains(sql, "union") {
		t.Errorf("unified plan lacks outer union (two sibling branches): %s", sql)
	}
}

func TestSingleBranchNeedsNoUnion(t *testing.T) {
	// Keep only supplier→part: the child query has a single branch, so no
	// union operator is required (§3.4: "plans with no branches do not
	// require the union operator").
	tree := fragTree(t)
	keep := tree.NoEdges()
	for _, e := range tree.Edges {
		if e.Child.Tag == "part" {
			keep[e.Index] = true
		}
	}
	streams := gen1(t, tree, keep, false, OuterJoin)
	for _, s := range streams {
		if strings.Contains(s.SQL(), "union") {
			t.Errorf("single-branch component emitted a union: %s", s.SQL())
		}
	}
}

func TestGuaranteedChildUsesInnerJoin(t *testing.T) {
	// Keep only supplier→nation ('1'-labeled, guaranteed by the total
	// foreign key): the paper's footnote says the outer join disappears.
	tree := fragTree(t)
	keep := tree.NoEdges()
	for _, e := range tree.Edges {
		if e.Child.Tag == "nation" {
			keep[e.Index] = true
		}
	}
	streams := gen1(t, tree, keep, false, OuterJoin)
	var found bool
	for _, s := range streams {
		sql := s.SQL()
		if strings.Contains(sql, "join") {
			found = true
			if strings.Contains(sql, "outer join") {
				t.Errorf("guaranteed child still uses an outer join: %s", sql)
			}
		}
	}
	if !found {
		t.Error("no stream contained the kept join")
	}
}

func TestGeneratedSQLReparses(t *testing.T) {
	tree := fragTree(t)
	for bits := uint64(0); bits < 4; bits++ {
		for _, reduce := range []bool{false, true} {
			for _, style := range []Style{OuterJoin, OuterUnion} {
				streams := gen1(t, tree, tree.KeepFromBits(bits), reduce, style)
				for _, s := range streams {
					if _, err := sqlparse.Parse(s.SQL()); err != nil {
						t.Errorf("bits=%b reduce=%v style=%v: generated SQL does not reparse: %v\n%s",
							bits, reduce, style, err, s.SQL())
					}
				}
			}
		}
	}
}

func TestStreamColsMatchQueryOutput(t *testing.T) {
	tree := fragTree(t)
	for bits := uint64(0); bits < 4; bits++ {
		streams := gen1(t, tree, tree.KeepFromBits(bits), true, OuterJoin)
		for _, s := range streams {
			out := sqlast.OutputColumns(s.Query)
			if len(out) != len(s.Cols) {
				t.Fatalf("bits=%b: %d output columns, %d metadata entries", bits, len(out), len(s.Cols))
			}
			for i := range out {
				if out[i] != s.Cols[i].Name {
					t.Errorf("bits=%b col %d: query %q vs meta %q", bits, i, out[i], s.Cols[i].Name)
				}
			}
		}
	}
}

func TestStructuralOrderByCoversLAndVars(t *testing.T) {
	tree := fragTree(t)
	streams := gen1(t, tree, tree.AllEdges(), false, OuterJoin)
	sql := streams[0].SQL()
	idx := strings.Index(sql, "order by")
	if idx < 0 {
		t.Fatal("no order by")
	}
	tail := sql[idx:]
	// The L2 column must sort before the level-2 variables.
	l2 := strings.Index(tail, "L2")
	name := strings.Index(tail, "v_n_name")
	pname := strings.Index(tail, "v_p_name")
	if l2 < 0 || name < 0 || pname < 0 {
		t.Fatalf("order by incomplete: %s", tail)
	}
	if l2 > name || l2 > pname {
		t.Errorf("L2 does not precede level-2 variables: %s", tail)
	}
}

func TestOuterUnionStyleBranchesPerLeaf(t *testing.T) {
	tree := fragTree(t)
	streams := gen1(t, tree, tree.AllEdges(), false, OuterUnion)
	u, ok := streams[0].Query.(*sqlast.Union)
	if !ok {
		t.Fatalf("outer-union unified query is %T", streams[0].Query)
	}
	// Two leaves (nation, part) → two branches.
	if len(u.Branches) != 2 {
		t.Errorf("branches = %d, want 2", len(u.Branches))
	}
}

func TestConstantElementGetsFillerColumn(t *testing.T) {
	q, err := rxl.Parse(`construct <root @R()><x/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := viewtree.Build(q, tpch.Schema())
	if err != nil {
		t.Fatal(err)
	}
	streams := gen1(t, tree, tree.NoEdges(), false, OuterJoin)
	for _, s := range streams {
		if len(s.Cols) == 0 {
			t.Error("variable-free stream has no columns at all")
		}
		if _, err := sqlparse.Parse(s.SQL()); err != nil {
			t.Errorf("filler SQL does not reparse: %v (%s)", err, s.SQL())
		}
	}
}

func TestMangleStability(t *testing.T) {
	a := mangle(viewtree.VarRef{Var: "S", Field: "SuppKey"})
	b := mangle(viewtree.VarRef{Var: "s", Field: "suppkey"})
	if a != b || a != "v_s_suppkey" {
		t.Errorf("mangle not canonical: %q vs %q", a, b)
	}
}

func TestQuery1UnifiedGeneration(t *testing.T) {
	q, err := rxl.Parse(rxl.Query1Source)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := viewtree.Build(q, tpch.Schema())
	if err != nil {
		t.Fatal(err)
	}
	streams := gen1(t, tree, tree.AllEdges(), true, OuterJoin)
	if len(streams) != 1 {
		t.Fatalf("streams = %d", len(streams))
	}
	sql := streams[0].SQL()
	if _, err := sqlparse.Parse(sql); err != nil {
		t.Fatalf("Query 1 unified SQL does not reparse: %v", err)
	}
	// Reduced unified Query 1 has exactly two dynamic branching levels
	// (the two '*' edges): L2 (part under supplier) and L3 (order under
	// part).
	var lCols []string
	for _, c := range streams[0].Cols {
		if c.IsL {
			lCols = append(lCols, c.Name)
		}
	}
	if len(lCols) != 2 || lCols[0] != "L2" || lCols[1] != "L3" {
		t.Errorf("dynamic L columns = %v, want [L2 L3]", lCols)
	}
}
