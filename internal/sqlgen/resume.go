package sqlgen

// Mid-stream resume queries. Every generated query is sorted by the
// structural key L1, V(1,*), L2, V(2,*), … — the property that lets the
// tagger merge streams in constant space. The same sortedness makes a
// broken stream cheap to recover: instead of re-running the query from
// scratch, the suffix at/after the last fully delivered row is exactly
//
//	select <cols> from (<body>) as rsm
//	where (k1,…,kn) >= (v1,…,vn)   -- lexicographically
//	order by k1, …, kn
//
// with (v1,…,vn) the boundary row's sort-key values. The predicate is >=
// rather than > because SQL bag semantics allow several rows with an equal
// full key (they are then byte-identical rows); the consumer re-delivers
// none of them by skipping as many boundary-key rows as it already handed
// out.

import (
	"fmt"

	"silkroute/internal/sqlast"
	"silkroute/internal/sqlparse"
	"silkroute/internal/value"
)

// resumeAlias names the derived table a resume query wraps the original
// body in. Generated aliases are b/q/c/u + counter and w_* CTE names, so it
// never collides.
const resumeAlias = "rsm"

// SortKey returns the output-row positions of the stream's structural sort
// key, in ORDER BY order. It is empty when the stream is unordered
// (StripOrder), in which case the stream cannot be resumed.
func (s *Stream) SortKey() []int { return s.sortKey }

// Resumable reports whether the stream still carries its structural sort
// order, so a died stream can be resumed from its last delivered key. It
// is true even for streams whose sort key is empty (a constant key:
// resume re-runs the query and skips the delivered prefix), and false
// after StripOrder — an unordered stream has no defined prefix to skip.
func (s *Stream) Resumable() bool { return s.sortKey != nil }

// ResumeSQL builds the SQL that resumes this stream at/after the given
// boundary: the sort-key values of the last fully delivered row, in SortKey
// order. The resumed query keeps the original's column names, positions,
// and ordering, so the consumer can splice its rows onto the prefix it
// already delivered. A nil/empty key means no row was delivered yet and the
// original SQL is returned verbatim.
//
// Key values may be NULL: NULLs sort before every value in this engine, so
// a NULL boundary component compares with IS NULL / IS NOT NULL instead of
// =/>.
func (s *Stream) ResumeSQL(key []value.Value) (string, error) {
	if len(key) == 0 {
		return s.SQL(), nil
	}
	if len(s.sortKey) == 0 {
		return "", fmt.Errorf("sqlgen: stream has no sort key (unordered); cannot resume")
	}
	if len(key) != len(s.sortKey) {
		return "", fmt.Errorf("sqlgen: resume key has %d values, sort key has %d columns", len(key), len(s.sortKey))
	}
	// Reparse the captured body text: Print output is guaranteed to parse
	// back to an equivalent tree, and a fresh tree keeps the stream's own
	// Query untouched by the wrapper below.
	body, err := sqlparse.Parse(s.bodySQL)
	if err != nil {
		return "", fmt.Errorf("sqlgen: reparse stream body: %w", err)
	}

	sel := &sqlast.Select{}
	keyNames := make([]string, len(s.sortKey))
	for i, p := range s.sortKey {
		keyNames[i] = s.outNames[p]
	}
	for _, n := range s.outNames {
		if n == "" {
			return "", fmt.Errorf("sqlgen: stream has an unnamed output column; cannot resume")
		}
		sel.Items = append(sel.Items, sqlast.SelectItem{Expr: sqlast.Col(resumeAlias, n), Alias: n})
	}
	sel.Where = resumePredicate(resumeAlias, keyNames, key)
	for _, n := range keyNames {
		sel.OrderBy = append(sel.OrderBy, sqlast.OrderItem{Expr: &sqlast.ColumnRef{Column: n}})
	}

	// A WITH-style body keeps its CTEs at the top level (the grammar
	// forbids WITH inside a derived table); only the body select is
	// wrapped.
	if w, ok := body.(*sqlast.With); ok {
		sel.From = []sqlast.TableExpr{&sqlast.Derived{Query: w.Body, Alias: resumeAlias}}
		w.Body = sel
		return sqlast.Print(w), nil
	}
	sel.From = []sqlast.TableExpr{&sqlast.Derived{Query: body, Alias: resumeAlias}}
	return sqlast.Print(sel), nil
}

// resumePredicate builds the lexicographic (k1,…,kn) >= (v1,…,vn) row-value
// comparison as the expanded disjunction
//
//	k1 > v1
//	or (k1 = v1 and k2 > v2)
//	or …
//	or (k1 = v1 and … and kn = vn)
//
// with NULL-aware component comparisons: this engine sorts NULL before
// every value, so "k > NULL" is "k is not null" and "k = NULL" is
// "k is null".
func resumePredicate(alias string, names []string, key []value.Value) sqlast.Expr {
	gt := func(i int) sqlast.Expr {
		col := sqlast.Col(alias, names[i])
		if key[i].IsNull() {
			return &sqlast.IsNull{E: col, Negate: true}
		}
		return &sqlast.Compare{Op: sqlast.OpGt, L: col, R: &sqlast.Literal{Val: key[i]}}
	}
	eq := func(i int) sqlast.Expr {
		col := sqlast.Col(alias, names[i])
		if key[i].IsNull() {
			return &sqlast.IsNull{E: col}
		}
		return &sqlast.Compare{Op: sqlast.OpEq, L: col, R: &sqlast.Literal{Val: key[i]}}
	}
	var terms []sqlast.Expr
	for i := range names {
		var conj []sqlast.Expr
		for j := 0; j < i; j++ {
			conj = append(conj, eq(j))
		}
		conj = append(conj, gt(i))
		terms = append(terms, sqlast.MakeAnd(conj))
	}
	allEq := make([]sqlast.Expr, len(names))
	for i := range names {
		allEq[i] = eq(i)
	}
	terms = append(terms, sqlast.MakeAnd(allEq))
	if len(terms) == 1 {
		return terms[0]
	}
	return &sqlast.Or{Terms: terms}
}
