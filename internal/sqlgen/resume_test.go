package sqlgen

import (
	"strings"
	"testing"

	"silkroute/internal/engine"
	"silkroute/internal/sqlparse"
	"silkroute/internal/table"
	"silkroute/internal/tpch"
	"silkroute/internal/value"
)

// runSQL executes generated SQL against a small TPC-H instance and returns
// the materialized rows.
func runSQL(t *testing.T, db *engine.Database, sql string) []table.Row {
	t.Helper()
	res, err := db.Execute(sql)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	var rows []table.Row
	for {
		row, ok := res.Next()
		if !ok {
			return rows
		}
		rows = append(rows, row)
	}
}

func keyOf(row table.Row, sortKey []int) []value.Value {
	key := make([]value.Value, len(sortKey))
	for i, p := range sortKey {
		key[i] = row[p]
	}
	return key
}

func keysIdentical(a, b []value.Value) bool {
	for i := range a {
		if !value.Identical(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestResumeSQLSuffixEquivalence is the correctness property of resume
// queries: for every boundary row of every stream, ResumeSQL(key) returns
// exactly the original result's suffix starting at the first row whose sort
// key equals the boundary key (the >= predicate re-delivers full-key ties;
// the consumer skips them by count). Iterating every boundary row also
// exercises NULL key components — outer-union rows carry NULLs in the other
// variants' key columns.
func TestResumeSQLSuffixEquivalence(t *testing.T) {
	db := tpch.Generate(0.0004, 11)
	tree := fragTree(t)
	cases := []struct {
		name   string
		keep   []bool
		style  Style
		reduce bool
	}{
		{"outer-union", tree.AllEdges(), OuterUnion, false},
		{"unified-cte", tree.AllEdges(), WithClause, false},
		{"fully-partitioned", tree.NoEdges(), OuterJoin, false},
		{"outer-join-reduced", tree.AllEdges(), OuterJoin, true},
	}
	sawNullKey := false
	for _, tc := range cases {
		streams := gen1(t, tree, tc.keep, tc.reduce, tc.style)
		for si, s := range streams {
			if !s.Resumable() {
				t.Errorf("%s stream %d: not resumable", tc.name, si)
				continue
			}
			orig := runSQL(t, db, s.SQL())
			if len(orig) < 2 {
				continue
			}
			sortKey := s.SortKey()
			// Every 3rd boundary keeps the quadratic check affordable while
			// still crossing variant changes and NULL key components.
			for b := 0; b < len(orig); b += 3 {
				key := keyOf(orig[b], sortKey)
				for _, v := range key {
					if v.IsNull() {
						sawNullKey = true
					}
				}
				rsql, err := s.ResumeSQL(key)
				if err != nil {
					t.Fatalf("%s stream %d boundary %d: ResumeSQL: %v", tc.name, si, b, err)
				}
				if !strings.Contains(rsql, resumeAlias) {
					t.Fatalf("%s stream %d: resume SQL does not wrap the body: %s", tc.name, si, rsql)
				}
				if _, err := sqlparse.Parse(rsql); err != nil {
					t.Fatalf("%s stream %d boundary %d: resume SQL does not parse: %v\n%s", tc.name, si, b, err, rsql)
				}
				got := runSQL(t, db, rsql)
				// The suffix starts at the first row sharing the boundary key.
				start := b
				for start > 0 && keysIdentical(keyOf(orig[start-1], sortKey), key) {
					start--
				}
				want := orig[start:]
				if len(got) != len(want) {
					t.Fatalf("%s stream %d boundary %d: resume returned %d rows, want %d\n%s",
						tc.name, si, b, len(got), len(want), rsql)
				}
				for i := range want {
					for c := range want[i] {
						if !value.Identical(got[i][c], want[i][c]) {
							t.Fatalf("%s stream %d boundary %d: row %d col %d = %v, want %v",
								tc.name, si, b, i, c, got[i][c], want[i][c])
						}
					}
				}
			}
		}
	}
	if !sawNullKey {
		t.Error("no boundary exercised a NULL sort-key component; fixture too small to cover the IS NULL predicate arms")
	}
}

func TestResumeSQLNilKeyReturnsOriginal(t *testing.T) {
	tree := fragTree(t)
	for _, s := range gen1(t, tree, tree.NoEdges(), false, OuterJoin) {
		rsql, err := s.ResumeSQL(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rsql != s.SQL() {
			t.Errorf("ResumeSQL(nil) = %q, want the original SQL", rsql)
		}
	}
}

func TestResumeSQLRejectsBadKeys(t *testing.T) {
	tree := fragTree(t)
	s := gen1(t, tree, tree.NoEdges(), false, OuterJoin)[0]
	if _, err := s.ResumeSQL([]value.Value{value.Int(1)}); err == nil && len(s.SortKey()) != 1 {
		t.Error("ResumeSQL accepted a key of the wrong arity")
	}
}

func TestStripOrderDisablesResume(t *testing.T) {
	tree := fragTree(t)
	s := gen1(t, tree, tree.NoEdges(), false, OuterJoin)[0]
	if !s.Resumable() {
		t.Fatal("ordered stream should be resumable")
	}
	key := make([]value.Value, len(s.SortKey()))
	for i := range key {
		key[i] = value.Int(1)
	}
	s.StripOrder()
	if s.Resumable() {
		t.Error("unordered stream reports resumable")
	}
	if _, err := s.ResumeSQL(key); err == nil {
		t.Error("ResumeSQL on an unordered stream did not fail")
	}
}
