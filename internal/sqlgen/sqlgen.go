// Package sqlgen translates a partitioned (optionally reduced) view tree
// into SQL, one query per component (§3.4 of the paper).
//
// Two generation styles are implemented:
//
//   - OuterJoin (SilkRoute's native style): each group's node query is
//     left-outer-joined with the outer union of its children's subqueries —
//     R ⟕ (S ∪ T). When every child edge guarantees at least one child
//     (labels '1'/'+'), the outer join degenerates to an inner join, per
//     the paper's footnote.
//   - OuterUnion (the comparator from Shanmugasundaram et al. [9]): one
//     branch per root-to-leaf group chain, each a chain of outer joins,
//     combined by outer union — (R ⟕ S) ∪ (R ⟕ T).
//   - WithClause: the outer-join plan with node queries lifted into WITH
//     common table expressions, per the paper's §3.4 footnote; for engines
//     that support WITH, each node query is materialized exactly once.
//
// Every generated query sorts by the structural key L1, V(1,*), L2,
// V(2,*), …, so the tagger can merge the streams and emit XML in constant
// space.
//
// One deliberate simplification relative to the paper's §3.4 example: the
// paper joins each union branch on that branch's own key columns, which
// forces a disjunctive ON condition ("(L2=1 and …) or (L2=2 and …)").
// Because automatically-introduced Skolem arguments always include every
// ancestor's keys, all branches share the parent's key columns, and a
// single conjunctive ON over those columns is equivalent. The engine
// executes disjunctive ON conditions too; the generator simply never needs
// to emit one.
package sqlgen

import (
	"fmt"
	"strings"

	"silkroute/internal/rxl"
	"silkroute/internal/sqlast"
	"silkroute/internal/viewtree"
)

// Style selects the generation strategy.
type Style uint8

// Generation styles.
const (
	OuterJoin Style = iota
	OuterUnion
	// WithClause generates the outer-join plan with every group's node
	// query lifted into a common table expression — the alternative the
	// paper's §3.4 footnote mentions for engines that support WITH. Each
	// CTE is materialized once by the engine.
	WithClause
)

// String names the style.
func (s Style) String() string {
	switch s {
	case OuterUnion:
		return "outer-union"
	case WithClause:
		return "with-clause"
	default:
		return "outer-join"
	}
}

// StreamCol describes one output column of a generated query: either a
// dynamic L column for a branching level, or a Skolem-term variable.
type StreamCol struct {
	Name  string
	IsL   bool
	Level int             // set when IsL
	Ref   viewtree.VarRef // set when !IsL
}

// Stream is one generated SQL query plus the metadata the tagger needs to
// interpret its rows.
type Stream struct {
	Comp  *viewtree.Component
	Query sqlast.Query
	Cols  []StreamCol

	// bodySQL is the query printed before the structural ORDER BY was
	// attached. Resume queries (ResumeSQL) wrap the body in a derived
	// table, and the SQL grammar forbids ORDER BY inside derived tables,
	// so the body text is captured up front instead of reconstructed by
	// mutating the shared AST.
	bodySQL string
	// outNames are the query's output column names in position order.
	outNames []string
	// sortKey holds the output positions of the structural sort key, in
	// ORDER BY order; nil once StripOrder removes the ordering, since an
	// unordered stream has no resumable prefix.
	sortKey []int
}

// SQL renders the stream's query as SQL text.
func (s *Stream) SQL() string { return sqlast.Print(s.Query) }

// Generate produces one Stream per component.
func Generate(t *viewtree.Tree, comps []*viewtree.Component, style Style) ([]*Stream, error) {
	out := make([]*Stream, 0, len(comps))
	for _, c := range comps {
		g := &gen{tree: t, comp: c}
		var (
			s   *Stream
			err error
		)
		switch style {
		case OuterUnion:
			s, err = g.genOuterUnion()
		case WithClause:
			g.useCTE = true
			s, err = g.genOuterJoin()
		default:
			s, err = g.genOuterJoin()
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// colID identifies a logical output column during generation.
type colID struct {
	isL   bool
	level int
	ref   viewtree.VarRef
}

func (c colID) name() string {
	if c.isL {
		return fmt.Sprintf("L%d", c.level)
	}
	return mangle(c.ref)
}

// mangle turns a variable reference into a SQL identifier: s.suppkey →
// v_s_suppkey. Tuple-variable aliases are globally unique, so names never
// collide.
func mangle(r viewtree.VarRef) string {
	return "v_" + strings.ToLower(r.Var) + "_" + strings.ToLower(r.Field)
}

type gen struct {
	tree *viewtree.Tree
	comp *viewtree.Component
	n    int // derived-table alias counter

	// useCTE lifts node queries into WITH-clause CTEs instead of inline
	// derived tables.
	useCTE bool
	ctes   []sqlast.CTE
	cteFor map[*viewtree.Group]string
}

// groupSource returns the FROM-clause source of a group's node query: an
// inline derived table, or (in WITH style) a scan of the group's CTE.
func (g *gen) groupSource(grp *viewtree.Group, alias string) sqlast.TableExpr {
	if !g.useCTE {
		return &sqlast.Derived{Query: g.nodeSelect(grp), Alias: alias}
	}
	if g.cteFor == nil {
		g.cteFor = make(map[*viewtree.Group]string)
	}
	name, ok := g.cteFor[grp]
	if !ok {
		name = "w_" + strings.ToLower(strings.ReplaceAll(grp.Root.SkolemName, ".", "_"))
		g.cteFor[grp] = name
		g.ctes = append(g.ctes, sqlast.CTE{Name: name, Query: g.nodeSelect(grp)})
	}
	return &sqlast.BaseTable{Name: name, Alias: alias}
}

func (g *gen) alias(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

// sortCols orders column IDs by the structural key: level first, L column
// before the variables of its level, variables by global position.
func (g *gen) sortCols(cols []colID) []colID {
	out := append([]colID{}, cols...)
	key := func(c colID) (int, int, int) {
		if c.isL {
			return c.level, 0, 0
		}
		vi, _ := g.tree.VarIndex(c.ref)
		return vi.Level, 1, vi.Pos
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			l1, k1, p1 := key(out[j-1])
			l2, k2, p2 := key(out[j])
			if l1 > l2 || l1 == l2 && (k1 > k2 || k1 == k2 && p1 > p2) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}

// subtreeCols computes the canonical column set of a group subtree: the
// group's args, one dynamic L column per child-edge level, and the child
// subtrees' columns.
func (g *gen) subtreeCols(grp *viewtree.Group) []colID {
	seen := make(map[colID]bool)
	var cols []colID
	add := func(c colID) {
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	var walk func(*viewtree.Group)
	walk = func(grp *viewtree.Group) {
		for _, a := range grp.Args {
			add(colID{ref: a})
		}
		for _, ge := range grp.Children {
			add(colID{isL: true, level: ge.Child.Root.Level()})
			walk(ge.Child)
		}
	}
	walk(grp)
	return g.sortCols(cols)
}

// nodeSelect builds the plain select computing one group's node query:
// its combined rule body with the group args projected out.
func (g *gen) nodeSelect(grp *viewtree.Group) *sqlast.Select {
	s := &sqlast.Select{}
	for _, a := range grp.Rule.Atoms {
		s.From = append(s.From, &sqlast.BaseTable{Name: a.Rel, Alias: a.Var})
	}
	var conj []sqlast.Expr
	for _, c := range grp.Rule.Conds {
		conj = append(conj, condExpr(c))
	}
	s.Where = sqlast.MakeAnd(conj)
	for _, a := range grp.Args {
		s.Items = append(s.Items, sqlast.SelectItem{
			Expr:  sqlast.Col(a.Var, a.Field),
			Alias: mangle(a),
		})
	}
	if len(s.Items) == 0 {
		// A constant element with no variables still needs one column so
		// the select is well-formed; the tagger ignores it.
		s.Items = append(s.Items, sqlast.SelectItem{Expr: sqlast.IntLit(1), Alias: "_k"})
	}
	return s
}

// genGroup recursively builds the outer-join query of a group subtree. The
// result's output columns are exactly subtreeCols(grp) by name.
func (g *gen) genGroup(grp *viewtree.Group) (*sqlast.Select, error) {
	if len(grp.Children) == 0 {
		if !g.useCTE {
			return g.nodeSelect(grp), nil
		}
		// WITH style: scan the group's CTE and project its columns.
		alias := g.alias("b")
		sel := &sqlast.Select{From: []sqlast.TableExpr{g.groupSource(grp, alias)}}
		for _, a := range grp.Args {
			sel.Items = append(sel.Items, sqlast.SelectItem{
				Expr:  sqlast.Col(alias, mangle(a)),
				Alias: mangle(a),
			})
		}
		if len(sel.Items) == 0 {
			sel.Items = append(sel.Items, sqlast.SelectItem{Expr: sqlast.Col(alias, "_k"), Alias: "_k"})
		}
		return sel, nil
	}

	// Children columns: everything in the subtree except this group's own
	// args (those come from the base select) — but the join keys must stay
	// in the union's projection so the ON condition can reference them on
	// the child side.
	keys := g.joinKeys(grp)
	keySet := make(map[colID]bool, len(keys))
	for _, k := range keys {
		keySet[colID{ref: k}] = true
	}
	own := make(map[colID]bool)
	for _, a := range grp.Args {
		own[colID{ref: a}] = true
	}
	var childCols []colID
	for _, c := range g.subtreeCols(grp) {
		if !own[c] || keySet[c] {
			childCols = append(childCols, c)
		}
	}

	// Build the union of child branches, each padded to childCols.
	var branches []*sqlast.Select
	for _, ge := range grp.Children {
		sub, err := g.genGroup(ge.Child)
		if err != nil {
			return nil, err
		}
		subAlias := g.alias("c")
		subCols := make(map[string]bool)
		for _, c := range g.subtreeCols(ge.Child) {
			subCols[c.name()] = true
		}
		branch := &sqlast.Select{From: []sqlast.TableExpr{&sqlast.Derived{Query: sub, Alias: subAlias}}}
		level := ge.Child.Root.Level()
		ordinal := int64(ge.Child.Root.Ordinal())
		for _, c := range childCols {
			var e sqlast.Expr
			switch {
			case c.isL && c.level == level:
				e = sqlast.IntLit(ordinal)
			case subCols[c.name()]:
				e = sqlast.Col(subAlias, c.name())
			default:
				e = sqlast.NullLit()
			}
			branch.Items = append(branch.Items, sqlast.SelectItem{Expr: e, Alias: c.name()})
		}
		branches = append(branches, branch)
	}
	var childQuery sqlast.Query
	if len(branches) == 1 {
		childQuery = branches[0]
	} else {
		childQuery = &sqlast.Union{Branches: branches}
	}

	// Join base with the children. The join keys are the parent-side
	// node's key args, which every child branch carries by construction.
	// The outer join degenerates to an inner join when every child is
	// guaranteed to exist (paper footnote in §3.5).
	baseAlias := g.alias("b")
	qAlias := g.alias("q")
	joinKind := sqlast.JoinLeftOuter
	allGuaranteed := true
	for _, ge := range grp.Children {
		if !ge.Label.AtLeastOne() {
			allGuaranteed = false
		}
	}
	if allGuaranteed {
		joinKind = sqlast.JoinInner
	}
	var on []sqlast.Expr
	for _, k := range keys {
		on = append(on, sqlast.Eq(sqlast.Col(baseAlias, mangle(k)), sqlast.Col(qAlias, mangle(k))))
	}
	join := &sqlast.Join{
		Kind: joinKind,
		L:    g.groupSource(grp, baseAlias),
		R:    &sqlast.Derived{Query: childQuery, Alias: qAlias},
		On:   sqlast.MakeAnd(on),
	}

	out := &sqlast.Select{From: []sqlast.TableExpr{join}}
	for _, a := range grp.Args {
		out.Items = append(out.Items, sqlast.SelectItem{
			Expr:  sqlast.Col(baseAlias, mangle(a)),
			Alias: mangle(a),
		})
	}
	for _, c := range childCols {
		if own[c] {
			continue // join keys already projected from the base side
		}
		out.Items = append(out.Items, sqlast.SelectItem{
			Expr:  sqlast.Col(qAlias, c.name()),
			Alias: c.name(),
		})
	}
	return out, nil
}

// joinKeys returns the deduplicated key args shared between a group and
// all of its children: the union of the edge parent nodes' key args, every
// one of which appears in each child subtree (Skolem args accumulate down
// the tree).
func (g *gen) joinKeys(grp *viewtree.Group) []viewtree.VarRef {
	seen := make(map[viewtree.VarRef]bool)
	var keys []viewtree.VarRef
	for _, ge := range grp.Children {
		for _, k := range ge.ParentNode.KeyArgs {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	// Only keys the child actually carries can join; with auto-Skolem
	// terms that is all of them, but explicit Skolem terms may drop some.
	var filtered []viewtree.VarRef
	for _, k := range keys {
		ok := true
		for _, ge := range grp.Children {
			if !groupCarries(ge.Child, k) {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, k)
		}
	}
	return filtered
}

func groupCarries(grp *viewtree.Group, k viewtree.VarRef) bool {
	for _, a := range grp.Args {
		if a == k {
			return true
		}
	}
	return false
}

// genOuterJoin generates the component's outer-join query with the
// structural ORDER BY. In WITH style, the collected CTEs wrap the body.
func (g *gen) genOuterJoin() (*Stream, error) {
	sel, err := g.genGroup(g.comp.Root)
	if err != nil {
		return nil, err
	}
	if g.useCTE && len(g.ctes) > 0 {
		return g.finishQuery(&sqlast.With{CTEs: g.ctes, Body: sel}, g.subtreeCols(g.comp.Root))
	}
	return g.finish(sel)
}

// genOuterUnion generates the component in the [9] style: one branch per
// root-to-leaf group chain, each a chain of left outer joins.
func (g *gen) genOuterUnion() (*Stream, error) {
	var chains [][]*viewtree.Group
	var walk func(path []*viewtree.Group, grp *viewtree.Group)
	walk = func(path []*viewtree.Group, grp *viewtree.Group) {
		path = append(append([]*viewtree.Group{}, path...), grp)
		if len(grp.Children) == 0 {
			chains = append(chains, path)
			return
		}
		for _, ge := range grp.Children {
			walk(path, ge.Child)
		}
	}
	walk(nil, g.comp.Root)

	all := g.subtreeCols(g.comp.Root)
	var branches []*sqlast.Select
	for _, chain := range chains {
		branch, err := g.genChain(chain, all)
		if err != nil {
			return nil, err
		}
		branches = append(branches, branch)
	}
	if len(branches) == 1 {
		return g.finish(branches[0])
	}
	u := &sqlast.Union{Branches: branches}
	return g.finishQuery(u, all)
}

// genChain builds one outer-union branch: the chain's groups joined left
// to right with outer joins, padded to the full column set.
func (g *gen) genChain(chain []*viewtree.Group, all []colID) (*sqlast.Select, error) {
	type part struct {
		alias string
		grp   *viewtree.Group
		cols  map[string]bool
	}
	parts := make([]part, len(chain))

	var from sqlast.TableExpr
	for i, grp := range chain {
		base := g.nodeSelect(grp)
		alias := g.alias("u")
		cols := make(map[string]bool)
		for _, a := range grp.Args {
			cols[mangle(a)] = true
		}
		// Tag the branch's L value inside the derived table so outer-join
		// null extension nulls it when the chain breaks.
		if i > 0 {
			lname := fmt.Sprintf("L%d", grp.Root.Level())
			base.Items = append(base.Items, sqlast.SelectItem{
				Expr:  sqlast.IntLit(int64(grp.Root.Ordinal())),
				Alias: lname,
			})
			cols[lname] = true
		}
		parts[i] = part{alias: alias, grp: grp, cols: cols}
		d := &sqlast.Derived{Query: base, Alias: alias}
		if i == 0 {
			from = d
			continue
		}
		// Join on the parent group's edge keys (carried by both sides).
		var on []sqlast.Expr
		prev := parts[i-1]
		for _, ge := range chain[i-1].Children {
			if ge.Child != grp {
				continue
			}
			for _, k := range ge.ParentNode.KeyArgs {
				if prev.cols[mangle(k)] && cols[mangle(k)] {
					on = append(on, sqlast.Eq(
						sqlast.Col(prev.alias, mangle(k)),
						sqlast.Col(alias, mangle(k))))
				}
			}
		}
		from = &sqlast.Join{Kind: sqlast.JoinLeftOuter, L: from, R: d, On: sqlast.MakeAnd(on)}
	}

	sel := &sqlast.Select{From: []sqlast.TableExpr{from}}
	for _, c := range all {
		// Shared columns (ancestor keys) must come from the shallowest
		// chain part that carries them: deeper parts are null-extended by
		// the outer joins, which would corrupt the structural sort key.
		var e sqlast.Expr = sqlast.NullLit()
		for i := 0; i < len(parts); i++ {
			if parts[i].cols[c.name()] {
				e = sqlast.Col(parts[i].alias, c.name())
				break
			}
		}
		sel.Items = append(sel.Items, sqlast.SelectItem{Expr: e, Alias: c.name()})
	}
	return sel, nil
}

// finish wraps a component select with the structural ORDER BY and stream
// metadata.
func (g *gen) finish(sel *sqlast.Select) (*Stream, error) {
	return g.finishQuery(sel, g.subtreeCols(g.comp.Root))
}

func (g *gen) finishQuery(q sqlast.Query, cols []colID) (*Stream, error) {
	outNames := sqlast.OutputColumns(q)
	byName := make(map[string]colID, len(cols))
	for _, c := range cols {
		byName[c.name()] = c
	}
	present := make(map[string]bool, len(outNames))
	for _, n := range outNames {
		present[n] = true
	}
	// The ORDER BY follows the canonical structural key; the column
	// metadata must follow the query's actual output positions, since the
	// tagger addresses row values positionally.
	var order []sqlast.OrderItem
	for _, c := range cols {
		if !present[c.name()] {
			return nil, fmt.Errorf("sqlgen: generated query lacks column %s", c.name())
		}
		order = append(order, sqlast.OrderItem{Expr: &sqlast.ColumnRef{Column: c.name()}})
	}
	var meta []StreamCol
	for _, n := range outNames {
		if c, ok := byName[n]; ok {
			meta = append(meta, StreamCol{Name: c.name(), IsL: c.isL, Level: c.level, Ref: c.ref})
		} else {
			// Filler columns (e.g. the "_k" constant of variable-free
			// groups) keep positions aligned; the tagger never reads them.
			meta = append(meta, StreamCol{Name: n})
		}
	}
	// Capture the resume metadata before the ORDER BY mutates the tree:
	// the body text, and where each sort-key column sits in the output row.
	pos := make(map[string]int, len(outNames))
	for i, n := range outNames {
		pos[n] = i
	}
	sortKey := make([]int, 0, len(cols))
	for _, c := range cols {
		sortKey = append(sortKey, pos[c.name()])
	}
	bodySQL := sqlast.Print(q)
	attachOrder(q, order)
	return &Stream{
		Comp: g.comp, Query: q, Cols: meta,
		bodySQL: bodySQL, outNames: outNames, sortKey: sortKey,
	}, nil
}

// attachOrder sets the structural ORDER BY on a query, reaching through a
// WITH clause to its body.
func attachOrder(q sqlast.Query, order []sqlast.OrderItem) {
	switch q := q.(type) {
	case *sqlast.Select:
		q.OrderBy = order
	case *sqlast.Union:
		q.OrderBy = order
	case *sqlast.With:
		attachOrder(q.Body, order)
	}
}

// condExpr converts an RXL condition into a SQL expression.
func condExpr(c rxl.Condition) sqlast.Expr {
	return &sqlast.Compare{Op: opMap[c.Op], L: operandExpr(c.L), R: operandExpr(c.R)}
}

var opMap = map[rxl.CompareOp]sqlast.CompareOp{
	rxl.OpEq: sqlast.OpEq,
	rxl.OpNe: sqlast.OpNe,
	rxl.OpLt: sqlast.OpLt,
	rxl.OpLe: sqlast.OpLe,
	rxl.OpGt: sqlast.OpGt,
	rxl.OpGe: sqlast.OpGe,
}

func operandExpr(o rxl.Operand) sqlast.Expr {
	if o.IsConst {
		return &sqlast.Literal{Val: o.Const}
	}
	return sqlast.Col(o.Var, o.Field)
}

// StripOrder removes the structural ORDER BY from the stream's query, for
// the unordered ([9]) execution strategy where the client assembles the
// document in memory and the server skips every sort. An unordered stream
// delivers rows in no defined order, so it also loses its resumable sort
// key.
func (s *Stream) StripOrder() {
	attachOrder(s.Query, nil)
	s.sortKey = nil
}
