GO ?= go
# Pinned so CI and laptops run the same checker; bump deliberately.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet staticcheck test test-race chaos bench-smoke ci experiments

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs the pinned staticcheck via `go run` (no global install). The
# -version probe separates "tool not fetchable" (offline, no module cache:
# warn and skip) from "tool ran and found problems" (fail).
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

# The race detector multiplies runtime; -short skips the exhaustive plan
# sweeps while still covering every concurrent code path.
test-race:
	$(GO) test -race -short ./...

# Deterministic seeds for the chaos suite's equivalence sweep; override to
# widen the matrix (CHAOS_SEEDS="1 2 3 4 5 6 7 8" make chaos).
CHAOS_SEEDS ?= 1 2 3 5

# The fault-injection suite under the race detector: every resilience test
# (resume, breaker, stale-pool, chaos equivalence) across a deterministic
# seed matrix. Separate from test-race so a resilience regression is
# identifiable at a glance.
chaos:
	$(GO) test -race ./internal/chaos/
	CHAOS_SEEDS="$(CHAOS_SEEDS)" $(GO) test -race \
		-run 'Chaos|Resume|Breaker|StreamLost|PoolSurvives|Backoff|Jitter' \
		. ./internal/wire/ ./internal/plan/ ./internal/sqlgen/

# One iteration of the parallel-execution grid: proves the benchmark and
# the worker pool still run, without paying for a full measurement.
# The captured output doubles as the CI artifact (bench-smoke.txt).
bench-smoke:
	@$(GO) test -run '^$$' -bench ParallelExecute -benchtime 1x ./internal/plan > bench-smoke.txt 2>&1; \
		status=$$?; cat bench-smoke.txt; exit $$status

ci: vet staticcheck build test-race chaos bench-smoke

experiments:
	$(GO) run ./cmd/experiments
