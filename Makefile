GO ?= go

.PHONY: all build vet test test-race bench-smoke ci experiments

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime; -short skips the exhaustive plan
# sweeps while still covering every concurrent code path.
test-race:
	$(GO) test -race -short ./...

# One iteration of the parallel-execution grid: proves the benchmark and
# the worker pool still run, without paying for a full measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench ParallelExecute -benchtime 1x ./internal/plan

ci: vet build test-race bench-smoke

experiments:
	$(GO) run ./cmd/experiments
