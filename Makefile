GO ?= go
# Pinned so CI and laptops run the same checker; bump deliberately.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet staticcheck test test-race chaos replica-chaos shard-chaos cache-check bench-smoke bench-json loadtest loadtest-smoke overload-chaos ci experiments

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs the pinned staticcheck via `go run` (no global install). The
# -version probe separates "tool not fetchable" (offline, no module cache:
# warn and skip) from "tool ran and found problems" (fail).
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

# The race detector multiplies runtime; -short skips the exhaustive plan
# sweeps while still covering every concurrent code path.
test-race:
	$(GO) test -race -short ./...

# Deterministic seeds for the chaos suite's equivalence sweep; override to
# widen the matrix (CHAOS_SEEDS="1 2 3 4 5 6 7 8" make chaos).
CHAOS_SEEDS ?= 1 2 3 5

# The fault-injection suite under the race detector: every resilience test
# (resume, breaker, stale-pool, chaos equivalence) across a deterministic
# seed matrix. Separate from test-race so a resilience regression is
# identifiable at a glance.
chaos:
	$(GO) test -race ./internal/chaos/
	CHAOS_SEEDS="$(CHAOS_SEEDS)" $(GO) test -race \
		-run 'Chaos|Resume|Breaker|StreamLost|PoolSurvives|Backoff|Jitter' \
		. ./internal/wire/ ./internal/plan/ ./internal/sqlgen/

# The replication suite under the race detector: balancer picks, mid-stream
# cross-replica failover with byte-exact splices, hedged opens, the
# half-open probe race, per-replica chaos specs, and the 1/2/3-replica ×
# chaos-seed equivalence matrix with one replica hard-killed mid-run.
replica-chaos:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" $(GO) test -race -count=1 \
		-run 'Replica|Failover|NoHealthy|HalfOpen|Hedge|FailsClosed|ProbeFailure|MultiSpec|SpecString' \
		. ./internal/wire/ ./internal/chaos/

# The sharding suite under the race detector: topology parsing, hash
# partitioning, the k-way scatter-gather merge (global order, cross-shard
# tie invariance, NULL keys), grid chaos specs, and the 1/2/4-shard ×
# chaos-seed equivalence matrix with one shard replica hard-killed so the
# per-shard resume + failover ladder heals underneath the merge.
shard-chaos:
	CHAOS_SEEDS="$(CHAOS_SEEDS)" $(GO) test -race -count=1 \
		-run 'Shard|Topology|Scatter|GridSpec|Merge|Partition' \
		. ./internal/wire/ ./internal/chaos/ ./internal/viewsvc/

# The caching layer's correctness gate under the race detector: cached and
# uncached materializations must be byte-identical across every strategy
# family, base-table writes must always invalidate, a killed run must never
# leave a partial fragment behind, and both cache packages' unit suites
# must pass.
cache-check:
	$(GO) test $(GOFLAGS) -race -run 'Cache|Invalidation' -count=1 .
	$(GO) test $(GOFLAGS) -race ./internal/plancache/ ./internal/fragcache/

# One iteration of the parallel-execution grid: proves the benchmark and
# the worker pool still run, without paying for a full measurement.
# The captured output doubles as the CI artifact (bench-smoke.txt).
bench-smoke:
	@$(GO) test $(GOFLAGS) -run '^$$' -bench ParallelExecute -benchtime 1x ./internal/plan > bench-smoke.txt 2>&1; \
		status=$$?; cat bench-smoke.txt; exit $$status

# The core benchmarks (cache speedup, parallel execution, hash join, tagger
# memory, wire transfer, replica failover, sharded scatter-gather) in
# machine-readable form: one pass each, three samples, parsed by
# cmd/benchjson into BENCH_9.json — committed at the repo root and archived
# by CI so later PRs can diff ns/op, B/op, and allocs/op without scraping
# logs.
bench-json:
	@$(GO) test $(GOFLAGS) -run '^$$' \
		-bench 'MaterializeCached|TaggerConstantSpace|WireTransfer|ReplicaFailover|ShardedMaterialize' \
		-benchtime 1x -count 3 . > bench-raw.txt 2>&1 && \
	$(GO) test $(GOFLAGS) -run '^$$' -bench ParallelExecute -benchtime 1x -count 3 \
		./internal/plan >> bench-raw.txt 2>&1 && \
	$(GO) test $(GOFLAGS) -run '^$$' -bench HashJoin -benchtime 1x -count 3 \
		./internal/sqlexec >> bench-raw.txt 2>&1; \
	status=$$?; cat bench-raw.txt; \
	if [ $$status -eq 0 ]; then $(GO) run ./cmd/benchjson -o BENCH_9.json bench-raw.txt; fi; \
	rm -f bench-raw.txt; exit $$status

# The view-service load test: N clients × M views against an in-process
# silkrouted, every response byte-compared to a direct Materialize, plus
# the saturation (503 + Retry-After) and SIGTERM-drain (zero truncated
# documents) assertions. The JSON summary carries the p50/p99 numbers.
loadtest:
	$(GO) run ./cmd/loadgen -clients 32 -rounds 4 -out loadtest.json

# The same harness, small enough to run under the race detector in CI:
# equivalence, saturation, and drain are all still asserted, and the p99
# summary lands in loadtest-smoke.json for the artifact upload.
loadtest-smoke:
	$(GO) run -race ./cmd/loadgen -clients 8 -rounds 2 -out loadtest-smoke.json

# The overload/degradation gate under the race detector: offered load at
# twice the admitted cap split across two tenants (one inside its quota,
# one hammering far past it) over a replica set with one replica
# chaos-killed mid-stream. Asserts the in-quota tenant sees only
# byte-identical documents with bounded p99, the abusive tenant collects
# 429 + Retry-After, spent-budget requests are refused without a single
# backend query, and all-replicas-down requests are served complete stale
# documents flagged with Silkroute-Stale headers.
overload-chaos:
	$(GO) run -race ./cmd/loadgen -overload -out overload-chaos.json

ci: vet staticcheck build test-race chaos replica-chaos shard-chaos cache-check loadtest-smoke overload-chaos bench-smoke bench-json

experiments:
	$(GO) run ./cmd/experiments
