GO ?= go
# Pinned so CI and laptops run the same checker; bump deliberately.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet staticcheck test test-race bench-smoke ci experiments

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Runs the pinned staticcheck via `go run` (no global install). The
# -version probe separates "tool not fetchable" (offline, no module cache:
# warn and skip) from "tool ran and found problems" (fail).
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline?); skipping"; \
	fi

test:
	$(GO) test ./...

# The race detector multiplies runtime; -short skips the exhaustive plan
# sweeps while still covering every concurrent code path.
test-race:
	$(GO) test -race -short ./...

# One iteration of the parallel-execution grid: proves the benchmark and
# the worker pool still run, without paying for a full measurement.
# The captured output doubles as the CI artifact (bench-smoke.txt).
bench-smoke:
	@$(GO) test -run '^$$' -bench ParallelExecute -benchtime 1x ./internal/plan > bench-smoke.txt 2>&1; \
		status=$$?; cat bench-smoke.txt; exit $$status

ci: vet staticcheck build test-race bench-smoke

experiments:
	$(GO) run ./cmd/experiments
