package silkroute

import (
	"io"
	"testing"

	"silkroute/internal/rxl"
)

// BenchmarkMaterializeCached measures the tentpole speedup. "cold" is the
// full pipeline — plan, SQL streams, sorted-merge tagging — on an uncached
// view; "planhit" keeps the fragment cache off so only planning is skipped
// (for Greedy, the search and its estimate requests); "warm" serves the
// whole document from the fragment cache. The acceptance bar is warm at
// least 5x faster than cold; in practice it is orders of magnitude.
func BenchmarkMaterializeCached(b *testing.B) {
	db := OpenTPCH(0.001, 42)

	b.Run("cold", func(b *testing.B) {
		v, err := ParseView(db, rxl.Query1Source)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := v.Materialize(ctx, io.Discard, OuterUnion); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("planhit", func(b *testing.B) {
		v, err := ParseView(db, rxl.Query1Source, WithPlanCache())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Materialize(ctx, io.Discard, Greedy); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := v.Materialize(ctx, io.Discard, Greedy)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.PlanCached {
				b.Fatal("expected a plan-cache hit")
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		v, err := ParseView(db, rxl.Query1Source, WithPlanCache(), WithFragmentCache(-1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Materialize(ctx, io.Discard, OuterUnion); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := v.Materialize(ctx, io.Discard, OuterUnion)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.FragmentCached {
				b.Fatal("expected a fragment-cache hit")
			}
		}
	})
}
