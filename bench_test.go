package silkroute

// Benchmarks, one per table and figure of the paper's evaluation section,
// plus ablations for the design decisions DESIGN.md calls out. The full
// 512-plan sweeps behind Figures 13 and 14 live in cmd/experiments (they
// take minutes); the benchmarks here measure the named plans each figure
// compares — optimal/greedy, unified outer-join, unified outer-union, and
// fully partitioned — so `go test -bench .` regenerates every figure's
// verdict: who wins and by what factor.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"silkroute/internal/engine"
	"silkroute/internal/plan"
	"silkroute/internal/rxl"
	"silkroute/internal/tpch"
	"silkroute/internal/value"
	"silkroute/internal/viewtree"
	"silkroute/internal/wire"
)

// benchScaleA mirrors the paper's Config A; benchScaleB keeps the benches
// fast while preserving the 10× headroom over A.
const (
	benchScaleA = 0.001
	benchScaleB = 0.005
)

type benchEnv struct {
	db     *engine.Database
	client *wire.Client
	tree1  *viewtree.Tree
	tree2  *viewtree.Tree
}

var envCache = map[float64]*benchEnv{}

func env(b *testing.B, scale float64) *benchEnv {
	b.Helper()
	if e, ok := envCache[scale]; ok {
		return e
	}
	db := tpch.Generate(scale, 42)
	db.SortBudgetRows = 50000 // the harness's server memory model
	e := &benchEnv{db: db, client: wire.InProcess(db)}
	for i, dst := range []**viewtree.Tree{&e.tree1, &e.tree2} {
		src := rxl.Query1Source
		if i == 1 {
			src = rxl.Query2Source
		}
		q, err := rxl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		t, err := viewtree.Build(q, db.Schema)
		if err != nil {
			b.Fatal(err)
		}
		*dst = t
	}
	envCache[scale] = e
	return e
}

func runWire(b *testing.B, e *benchEnv, p *plan.Plan) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := plan.ExecuteWire(ctx, e.client, p, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if m.Rows == 0 {
			b.Fatal("no rows transferred")
		}
	}
}

func greedyPlan(b *testing.B, e *benchEnv, t *viewtree.Tree) *plan.Plan {
	b.Helper()
	res, err := plan.Greedy(ctx, e.db, t, plan.DefaultGreedyParams(true))
	if err != nil {
		b.Fatal(err)
	}
	return res.BestPlan(t)
}

// BenchmarkTable1 regenerates the experimental configurations: database
// construction cost at the paper's Config A scale.
func BenchmarkTable1_GenerateConfigA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if db := tpch.Generate(benchScaleA, 42); db == nil {
			b.Fatal("nil database")
		}
	}
}

// BenchmarkSec2Table reproduces §2's timing table: the fully partitioned
// (10-query), greedy (few-query), and unified (1-query) plans of Query 1.
func BenchmarkSec2Table(b *testing.B) {
	e := env(b, benchScaleB)
	b.Run("queries=10_fully_partitioned", func(b *testing.B) {
		runWire(b, e, plan.FullyPartitioned(e.tree1))
	})
	b.Run("queries=few_greedy_optimal", func(b *testing.B) {
		runWire(b, e, greedyPlan(b, e, e.tree1))
	})
	b.Run("queries=1_unified", func(b *testing.B) {
		runWire(b, e, plan.Unified(e.tree1, true))
	})
}

// figureBench measures one figure's marked plans: the greedy/near-optimal
// plan, the unified outer-join plan, the unified outer-union plan, and the
// fully partitioned plan.
func figureBench(b *testing.B, t func(*benchEnv) *viewtree.Tree, reduce bool) {
	e := env(b, benchScaleA)
	tree := t(e)
	b.Run("optimal_greedy", func(b *testing.B) {
		p := greedyPlan(b, e, tree)
		p.Reduce = reduce
		runWire(b, e, p)
	})
	b.Run("unified_outer_join", func(b *testing.B) {
		runWire(b, e, plan.Unified(tree, reduce))
	})
	b.Run("unified_outer_union", func(b *testing.B) {
		runWire(b, e, plan.UnifiedOuterUnion(tree, reduce))
	})
	b.Run("fully_partitioned", func(b *testing.B) {
		runWire(b, e, plan.FullyPartitioned(tree))
	})
}

// BenchmarkFig13a: Query 1, Config A, non-reduced plans (panel a).
func BenchmarkFig13a_Query1_NonReduced(b *testing.B) {
	figureBench(b, func(e *benchEnv) *viewtree.Tree { return e.tree1 }, false)
}

// BenchmarkFig13bc: Query 1, Config A, reduced plans (panels b and c; the
// wire execution measures both query and total time behaviour).
func BenchmarkFig13bc_Query1_Reduced(b *testing.B) {
	figureBench(b, func(e *benchEnv) *viewtree.Tree { return e.tree1 }, true)
}

// BenchmarkFig14a: Query 2, Config A, non-reduced plans.
func BenchmarkFig14a_Query2_NonReduced(b *testing.B) {
	figureBench(b, func(e *benchEnv) *viewtree.Tree { return e.tree2 }, false)
}

// BenchmarkFig14bc: Query 2, Config A, reduced plans.
func BenchmarkFig14bc_Query2_Reduced(b *testing.B) {
	figureBench(b, func(e *benchEnv) *viewtree.Tree { return e.tree2 }, true)
}

// BenchmarkFig15 reproduces Figure 15's Config-B comparison: greedy plans
// versus the outer-union and fully partitioned plans at the larger scale.
func BenchmarkFig15_ConfigB(b *testing.B) {
	e := env(b, benchScaleB)
	for _, q := range []struct {
		name string
		tree *viewtree.Tree
	}{{"query1", e.tree1}, {"query2", e.tree2}} {
		b.Run(q.name+"/greedy", func(b *testing.B) {
			runWire(b, e, greedyPlan(b, e, q.tree))
		})
		b.Run(q.name+"/outer_union", func(b *testing.B) {
			runWire(b, e, plan.UnifiedOuterUnion(q.tree, true))
		})
		b.Run(q.name+"/fully_partitioned", func(b *testing.B) {
			runWire(b, e, plan.FullyPartitioned(q.tree))
		})
	}
}

// BenchmarkFig18_GreedySearch measures the plan-generation algorithm
// itself (Figure 18's selection step): a full greedy search including all
// optimizer estimate requests.
func BenchmarkFig18_GreedySearch(b *testing.B) {
	e := env(b, benchScaleA)
	for _, q := range []struct {
		name string
		tree *viewtree.Tree
	}{{"query1", e.tree1}, {"query2", e.tree2}} {
		for _, reduce := range []bool{false, true} {
			name := q.name + "/reduce=false"
			if reduce {
				name = q.name + "/reduce=true"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := plan.Greedy(ctx, e.db, q.tree, plan.DefaultGreedyParams(reduce)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationReduction isolates §3.5's view-tree reduction: the same
// unified plan with and without reduction (the paper's ~2.5× effect).
func BenchmarkAblationReduction(b *testing.B) {
	e := env(b, benchScaleA)
	b.Run("reduced", func(b *testing.B) { runWire(b, e, plan.Unified(e.tree1, true)) })
	b.Run("non_reduced", func(b *testing.B) { runWire(b, e, plan.Unified(e.tree1, false)) })
}

// BenchmarkAblationJoinStyle isolates §3.4's outer-join versus outer-union
// unified plans — R ⟕ (S ∪ T) versus (R ⟕ S) ∪ (R ⟕ T).
func BenchmarkAblationJoinStyle(b *testing.B) {
	e := env(b, benchScaleA)
	b.Run("outer_join", func(b *testing.B) { runWire(b, e, plan.Unified(e.tree1, true)) })
	b.Run("outer_union", func(b *testing.B) { runWire(b, e, plan.UnifiedOuterUnion(e.tree1, true)) })
}

// BenchmarkAblationGreedyCoefficients sweeps the cost-model weight A/B
// (§5.1 used A=100, B=1 throughout) to show the selection's sensitivity.
func BenchmarkAblationGreedyCoefficients(b *testing.B) {
	e := env(b, benchScaleA)
	for _, ab := range []struct {
		name string
		a, b float64
	}{{"A100_B1", 100, 1}, {"A1_B1", 1, 1}, {"A100_B0", 100, 0}, {"A0_B1", 0, 1}} {
		b.Run(ab.name, func(b *testing.B) {
			prm := plan.DefaultGreedyParams(true)
			prm.A, prm.B = ab.a, ab.b
			for i := 0; i < b.N; i++ {
				res, err := plan.Greedy(ctx, e.db, e.tree1, prm)
				if err != nil {
					b.Fatal(err)
				}
				p := res.BestPlan(e.tree1)
				if _, err := plan.ExecuteWire(ctx, e.client, p, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTaggerConstantSpace demonstrates §3.3's claim: tagging
// allocations per output row stay flat as the database grows (memory
// depends on the view tree, not the data).
func BenchmarkTaggerConstantSpace(b *testing.B) {
	for _, scale := range []float64{0.001, 0.004} {
		e := env(b, scale)
		b.Run(scaleName(scale), func(b *testing.B) {
			p := plan.Unified(e.tree1, true)
			b.ReportAllocs()
			var rows int64
			for i := 0; i < b.N; i++ {
				m, err := plan.ExecuteWire(ctx, e.client, p, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				rows += m.Rows
			}
			b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
		})
	}
}

func scaleName(s float64) string {
	if s >= 0.004 {
		return "scale_large"
	}
	return "scale_small"
}

// BenchmarkWireTransfer isolates the middleware's tuple binding/transfer
// path: the §2 "total time minus query time" component.
func BenchmarkWireTransfer(b *testing.B) {
	e := env(b, benchScaleA)
	sql := "select l.orderkey, l.partkey, l.suppkey, l.lno, l.qty, l.prc from LineItem l order by l.orderkey, l.lno"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := e.client.Query(ctx, sql)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := rows.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(rows.BytesRead)
	}
}

// BenchmarkReplicaFailover measures the cross-replica failover path end to
// end: every iteration opens a sorted stream on a replica that kills it
// (and every same-replica continuation) after 100 rows, burns its one
// same-replica resume, then fails over to the healthy replica and finishes
// the stream there — the degradation ladder's full middle rung.
func BenchmarkReplicaFailover(b *testing.B) {
	db := tpch.Generate(benchScaleA, 42)
	const sql = "select o.orderkey, o.custkey from Orders o order by o.orderkey"
	spec := &wire.ResumeSpec{
		KeyCols: []int{0},
		Rewrite: func(key []value.Value) (string, error) {
			if key == nil {
				return sql, nil
			}
			return fmt.Sprintf(
				"select o.orderkey, o.custkey from Orders o where o.orderkey >= %d order by o.orderkey",
				key[0].AsInt()), nil
		},
	}
	errKill := errors.New("injected kill")
	deadSrv := &wire.Server{DB: db, RowFault: func(string) func(int64) error {
		return func(i int64) error {
			if i >= 100 {
				return errKill
			}
			return nil
		}
	}}
	liveSrv := &wire.Server{DB: db}
	pipeDialer := func(srv *wire.Server) func(context.Context) (net.Conn, error) {
		return func(context.Context) (net.Conn, error) {
			c1, c2 := net.Pipe()
			go srv.ServeConn(c2)
			return c1, nil
		}
	}
	copts := []wire.ClientOption{
		wire.WithResume(wire.Resume{MaxResumes: 1}),
		wire.WithRetry(wire.Retry{BaseDelay: time.Millisecond}),
	}
	dead := wire.NewClient(pipeDialer(deadSrv), copts...)
	live := wire.NewClient(pipeDialer(liveSrv), copts...)
	defer dead.Close()
	defer live.Close()

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh set resets the round-robin cursor, so the stream always
		// opens on the dead replica; the clients (and their pools) persist.
		set := wire.NewReplicaSet([]*wire.Client{dead, live})
		rows, err := set.QueryResumable(ctx, sql, spec)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := rows.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if rows.Failovers == 0 {
			b.Fatal("no failover exercised")
		}
		if n == 0 {
			b.Fatal("no rows transferred")
		}
	}
}

// BenchmarkAblationSortedVsUnordered compares SilkRoute's sorted,
// constant-space strategy with the [9]-style unordered strategy the
// paper's §6 discusses: the unordered path skips every server sort but
// assembles the whole document in client memory.
func BenchmarkAblationSortedVsUnordered(b *testing.B) {
	e := env(b, benchScaleA)
	b.Run("sorted_constant_space", func(b *testing.B) {
		runWire(b, e, plan.Unified(e.tree1, true))
	})
	b.Run("unordered_in_memory", func(b *testing.B) {
		p := plan.Unified(e.tree1, true)
		p.Unordered = true
		runWire(b, e, p)
	})
}
