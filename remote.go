package silkroute

import (
	"context"
	"net"
	"sync"

	"silkroute/internal/fragcache"
	"silkroute/internal/plancache"
	"silkroute/internal/rxl"
	"silkroute/internal/schema"
	"silkroute/internal/tpch"
	"silkroute/internal/viewtree"
	"silkroute/internal/wire"
)

// tpchSchemaForRemote builds the TPC-H schema via the generator package.
func tpchSchemaForRemote() *schema.Schema { return tpch.Schema() }

// Remote is a SilkRoute connection to a database served elsewhere over the
// wire protocol — the paper's actual deployment: the middleware runs on a
// client machine, submits SQL over the network, and asks the remote
// optimizer for cost estimates.
//
// The connection maintains a bounded pool of wire connections (see
// WithPoolSize) and retries dial-time failures under the WithRetry policy.
// A Remote is safe for concurrent use; Close it when done to release the
// pool.
type Remote struct {
	client wire.Backend

	cacheMu sync.Mutex
	plans   *plancache.Cache
	frags   *fragcache.Cache
}

// ConnectTCP returns a remote database handle for the given address.
// Connections are dialed on demand — honoring the materialize context's
// deadline — pooled, and reused across queries and estimate requests.
func ConnectTCP(addr string, opts ...Option) *Remote {
	return &Remote{client: wire.Dial(addr, buildConfig(opts).clientOptions()...)}
}

// ConnectFunc returns a remote database handle using a custom dialer. The
// dialer is called whenever the pool has no idle connection; a dialer that
// can block should keep its own timeout, as it is not handed the request
// context.
func ConnectFunc(dial func() (net.Conn, error), opts ...Option) *Remote {
	return &Remote{client: wire.NewClient(
		func(context.Context) (net.Conn, error) { return dial() },
		buildConfig(opts).clientOptions()...)}
}

// ConnectReplicas returns a remote database handle over N replica
// endpoints serving the same data. Each replica keeps its own connection
// pool, retry policy, and circuit breaker (built from the shared option
// list); a health-weighted balancer assigns every stream to a replica at
// execution time, and — with WithResume enabled — a stream whose replica
// dies mid-flight resumes there first, then fails over to another healthy
// replica, splicing the continuation in byte-identically (see
// WithFailover). When every replica is open-circuit, requests fail closed
// with ErrNoHealthyReplica. A single address behaves like ConnectTCP.
func ConnectReplicas(addrs []string, opts ...Option) *Remote {
	if len(addrs) == 0 {
		panic("silkroute: ConnectReplicas needs at least one address")
	}
	c := buildConfig(opts)
	if len(addrs) == 1 {
		return &Remote{client: wire.Dial(addrs[0], c.clientOptions()...)}
	}
	clients := make([]*wire.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = wire.Dial(a, c.clientOptions()...)
	}
	return &Remote{client: wire.NewReplicaSet(clients, c.replicaOptions(addrs)...)}
}

// Close releases the connection pool. In-flight requests finish on their
// own connections; new requests fail.
func (r *Remote) Close() error { return r.client.Close() }

// IdleConns reports how many pooled connections are currently idle —
// useful for verifying that cancellation released everything.
func (r *Remote) IdleConns() int { return r.client.IdleConns() }

// ParseRemoteView compiles an RXL view against a remote database. The
// schema is the *source description* the paper's middleware keeps locally:
// relations, keys, and the foreign-key totality constraints that drive
// edge labeling — the data itself stays on the server.
func ParseRemoteView(r *Remote, s *Schema, src string, opts ...Option) (*View, error) {
	q, err := rxl.Parse(src)
	if err != nil {
		return nil, err
	}
	tree, err := viewtree.Build(q, s.s)
	if err != nil {
		return nil, err
	}
	v := &View{remote: r, tree: tree, Wrapper: "document", Reduce: true}
	buildConfig(opts).apply(v)
	return v, nil
}

// TPCHSourceDescription returns the source description of the built-in
// TPC-H fragment schema, for middleware instances that evaluate views
// against a remote TPC-H server.
func TPCHSourceDescription() *Schema {
	return &Schema{s: tpchSchemaForRemote()}
}
