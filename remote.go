package silkroute

import (
	"net"

	"silkroute/internal/rxl"
	"silkroute/internal/schema"
	"silkroute/internal/tpch"
	"silkroute/internal/viewtree"
	"silkroute/internal/wire"
)

// tpchSchemaForRemote builds the TPC-H schema via the generator package.
func tpchSchemaForRemote() *schema.Schema { return tpch.Schema() }

// Remote is a SilkRoute connection to a database served elsewhere over the
// wire protocol — the paper's actual deployment: the middleware runs on a
// client machine, submits SQL over the network, and asks the remote
// optimizer for cost estimates.
type Remote struct {
	client *wire.Client
}

// ConnectTCP returns a remote database handle dialing the given address
// for every query and estimate request.
func ConnectTCP(addr string) *Remote {
	return ConnectFunc(func() (net.Conn, error) { return net.Dial("tcp", addr) })
}

// ConnectFunc returns a remote database handle using a custom dialer.
func ConnectFunc(dial func() (net.Conn, error)) *Remote {
	return &Remote{client: wire.NewClient(dial)}
}

// ParseRemoteView compiles an RXL view against a remote database. The
// schema is the *source description* the paper's middleware keeps locally:
// relations, keys, and the foreign-key totality constraints that drive
// edge labeling — the data itself stays on the server.
func ParseRemoteView(r *Remote, s *Schema, src string) (*View, error) {
	q, err := rxl.Parse(src)
	if err != nil {
		return nil, err
	}
	tree, err := viewtree.Build(q, s.s)
	if err != nil {
		return nil, err
	}
	return &View{remote: r, tree: tree, Wrapper: "document", Reduce: true}, nil
}

// TPCHSourceDescription returns the source description of the built-in
// TPC-H fragment schema, for middleware instances that evaluate views
// against a remote TPC-H server.
func TPCHSourceDescription() *Schema {
	return &Schema{s: tpchSchemaForRemote()}
}
