package silkroute

import (
	"context"
	"errors"
	"net"
	"sync"

	"silkroute/internal/fragcache"
	"silkroute/internal/plancache"
	"silkroute/internal/rxl"
	"silkroute/internal/schema"
	"silkroute/internal/tpch"
	"silkroute/internal/viewtree"
	"silkroute/internal/wire"
)

// tpchSchemaForRemote builds the TPC-H schema via the generator package.
func tpchSchemaForRemote() *schema.Schema { return tpch.Schema() }

// Remote is a SilkRoute connection to a database served elsewhere over the
// wire protocol — the paper's actual deployment: the middleware runs on a
// client machine, submits SQL over the network, and asks the remote
// optimizer for cost estimates.
//
// The connection maintains a bounded pool of wire connections (see
// WithPoolSize) and retries dial-time failures under the WithRetry policy.
// A Remote is safe for concurrent use; Close it when done to release the
// pool.
type Remote struct {
	client wire.Backend

	// source is the source description attached with WithSource; nil until
	// one is provided. NewHandle compiles views against it.
	source *Schema

	cacheMu sync.Mutex
	plans   *plancache.Cache
	frags   *fragcache.Cache
}

// Dial is the single constructor behind every remote connection shape. The
// endpoint comes from the options: WithAddrs(one) dials a single server,
// WithAddrs(several) builds a replica set with health-weighted balancing
// and cross-replica failover, and WithDialer substitutes a custom
// transport. The same option list also carries the connection policy
// (retry, pool, timeouts, resume, breaker, failover, hedging) and the
// source description (WithSource), so a server's per-backend config maps
// 1:1 onto one option slice.
//
// ConnectTCP, ConnectReplicas, and ConnectFunc remain as thin documented
// wrappers over Dial for code written against the older constructors.
func Dial(opts ...Option) (*Remote, error) {
	c := buildConfig(opts)
	r := &Remote{source: c.source}
	switch {
	case c.dialer != nil && len(c.addrs) > 0:
		return nil, errors.New("silkroute: Dial: WithDialer and WithAddrs are mutually exclusive")
	case c.dialer != nil:
		r.client = wire.NewClient(c.dialer, c.clientOptions()...)
	case len(c.addrs) == 1:
		r.client = wire.Dial(c.addrs[0], c.clientOptions()...)
	case len(c.addrs) > 1:
		clients := make([]*wire.Client, len(c.addrs))
		for i, a := range c.addrs {
			clients[i] = wire.Dial(a, c.clientOptions()...)
		}
		r.client = wire.NewReplicaSet(clients, c.replicaOptions(c.addrs)...)
	default:
		return nil, errors.New("silkroute: Dial: no endpoint — pass WithAddrs or WithDialer")
	}
	return r, nil
}

// ConnectTCP returns a remote database handle for the given address.
// Connections are dialed on demand — honoring the materialize context's
// deadline — pooled, and reused across queries and estimate requests.
//
// It is a wrapper for Dial(WithAddrs(addr), opts...), kept as a documented
// alias for one release.
func ConnectTCP(addr string, opts ...Option) *Remote {
	r, err := Dial(append([]Option{WithAddrs(addr)}, opts...)...)
	if err != nil {
		// Unreachable unless the option list smuggles in a dialer; that
		// misuse deserves the same loud failure ConnectReplicas gives.
		panic(err)
	}
	return r
}

// ConnectFunc returns a remote database handle using a custom dialer. The
// dialer is called whenever the pool has no idle connection; a dialer that
// can block should keep its own timeout, as it is not handed the request
// context.
//
// It is a wrapper for Dial(WithDialer(...), opts...), kept as a documented
// alias for one release.
func ConnectFunc(dial func() (net.Conn, error), opts ...Option) *Remote {
	r, err := Dial(append([]Option{
		WithDialer(func(context.Context) (net.Conn, error) { return dial() }),
	}, opts...)...)
	if err != nil {
		panic(err)
	}
	return r
}

// ConnectReplicas returns a remote database handle over N replica
// endpoints serving the same data. Each replica keeps its own connection
// pool, retry policy, and circuit breaker (built from the shared option
// list); a health-weighted balancer assigns every stream to a replica at
// execution time, and — with WithResume enabled — a stream whose replica
// dies mid-flight resumes there first, then fails over to another healthy
// replica, splicing the continuation in byte-identically (see
// WithFailover). When every replica is open-circuit, requests fail closed
// with ErrNoHealthyReplica. A single address behaves like ConnectTCP.
//
// It is a wrapper for Dial(WithAddrs(addrs...), opts...), kept as a
// documented alias for one release.
func ConnectReplicas(addrs []string, opts ...Option) *Remote {
	if len(addrs) == 0 {
		panic("silkroute: ConnectReplicas needs at least one address")
	}
	r, err := Dial(append([]Option{WithAddrs(addrs...)}, opts...)...)
	if err != nil {
		panic(err)
	}
	return r
}

// Close releases the connection pool. In-flight requests finish on their
// own connections; new requests fail.
func (r *Remote) Close() error { return r.client.Close() }

// IdleConns reports how many pooled connections are currently idle —
// useful for verifying that cancellation released everything.
func (r *Remote) IdleConns() int { return r.client.IdleConns() }

// ParseRemoteView compiles an RXL view against a remote database. The
// schema is the *source description* the paper's middleware keeps locally:
// relations, keys, and the foreign-key totality constraints that drive
// edge labeling — the data itself stays on the server. A nil schema falls
// back to the connection's WithSource description.
func ParseRemoteView(r *Remote, s *Schema, src string, opts ...Option) (*View, error) {
	if s == nil {
		if s = r.source; s == nil {
			return nil, errors.New("silkroute: ParseRemoteView: no source description — pass a schema or dial with WithSource")
		}
	}
	q, err := rxl.Parse(src)
	if err != nil {
		return nil, err
	}
	tree, err := viewtree.Build(q, s.s)
	if err != nil {
		return nil, err
	}
	v := &View{remote: r, tree: tree, wrapper: "document", reduce: true}
	buildConfig(opts).apply(v)
	return v, nil
}

// TPCHSourceDescription returns the source description of the built-in
// TPC-H fragment schema, for middleware instances that evaluate views
// against a remote TPC-H server.
func TPCHSourceDescription() *Schema {
	return &Schema{s: tpchSchemaForRemote()}
}
