package silkroute

import (
	"context"
	"errors"
	"net"
	"sync"

	"silkroute/internal/fragcache"
	"silkroute/internal/plancache"
	"silkroute/internal/rxl"
	"silkroute/internal/schema"
	"silkroute/internal/tpch"
	"silkroute/internal/viewtree"
	"silkroute/internal/wire"
)

// tpchSchemaForRemote builds the TPC-H schema via the generator package.
func tpchSchemaForRemote() *schema.Schema { return tpch.Schema() }

// Remote is a SilkRoute connection to a database served elsewhere over the
// wire protocol — the paper's actual deployment: the middleware runs on a
// client machine, submits SQL over the network, and asks the remote
// optimizer for cost estimates.
//
// The connection maintains a bounded pool of wire connections (see
// WithPoolSize) and retries dial-time failures under the WithRetry policy.
// A Remote is safe for concurrent use; Close it when done to release the
// pool.
type Remote struct {
	client wire.Backend

	// source is the source description attached with WithSource; nil until
	// one is provided. NewHandle compiles views against it.
	source *Schema

	cacheMu sync.Mutex
	plans   *plancache.Cache
	frags   *fragcache.Cache
}

// Dial is the single constructor behind every remote connection shape: it
// takes a declarative Topology — Single(addr), Replicas(addrs...),
// Sharded(groups...), SingleFunc(dialer), or ParseTopology's flag string —
// and builds the matching wire backend: a pooled client, a replica set
// with health-weighted balancing and cross-replica failover, or a shard
// set that scatters every stream and k-way-merges the sorted partials.
// Grids compose: each shard of a Sharded topology is its own replica
// group with its own recovery ladder underneath the merge.
//
// The option list carries the connection policy (retry, pool, timeouts,
// resume, breaker, failover, hedging) and the source description
// (WithSource), so a server's per-backend config maps 1:1 onto one option
// slice. A zero Topology falls back to option-carried endpoints
// (WithAddrs / WithDialer); declaring both is an error.
//
// ConnectTCP, ConnectReplicas, and ConnectFunc remain as thin documented
// wrappers over Dial for code written against the older constructors.
func Dial(t Topology, opts ...Option) (*Remote, error) {
	c := buildConfig(opts)
	if t.IsZero() {
		switch {
		case c.dialer != nil && len(c.addrs) > 0:
			return nil, errors.New("silkroute: Dial: WithDialer and WithAddrs are mutually exclusive")
		case c.dialer != nil:
			t = SingleFunc(c.dialer)
		case len(c.addrs) > 0:
			t = Replicas(c.addrs...)
		default:
			return nil, errors.New("silkroute: Dial: no endpoint — pass a Topology, WithAddrs, or WithDialer")
		}
	} else if c.dialer != nil || len(c.addrs) > 0 {
		return nil, errors.New("silkroute: Dial: a Topology and WithAddrs/WithDialer are mutually exclusive")
	}
	r := &Remote{source: c.source}
	backends := make([]wire.Backend, len(t.groups))
	for i, g := range t.groups {
		if len(g) == 1 {
			backends[i] = dialEndpoint(g[0], c)
			continue
		}
		clients := make([]*wire.Client, len(g))
		names := make([]string, len(g))
		for j, e := range g {
			clients[j] = dialEndpoint(e, c)
			names[j] = e.addr
		}
		backends[i] = wire.NewReplicaSet(clients, c.replicaOptions(names)...)
	}
	if len(backends) == 1 {
		r.client = backends[0]
	} else {
		r.client = wire.NewShardSet(backends, wire.WithShardNames(t.shardNames()))
	}
	return r, nil
}

// dialEndpoint builds one endpoint's pooled client under the shared
// connection policy.
func dialEndpoint(e endpoint, c *config) *wire.Client {
	if e.dial != nil {
		return wire.NewClient(e.dial, c.clientOptions()...)
	}
	return wire.Dial(e.addr, c.clientOptions()...)
}

// ConnectTCP returns a remote database handle for the given address.
// Connections are dialed on demand — honoring the materialize context's
// deadline — pooled, and reused across queries and estimate requests.
//
// It is a wrapper for Dial(Single(addr), opts...), kept as a documented
// alias.
func ConnectTCP(addr string, opts ...Option) *Remote {
	r, err := Dial(Single(addr), opts...)
	if err != nil {
		// Unreachable unless the option list smuggles in an endpoint; that
		// misuse deserves the same loud failure ConnectReplicas gives.
		panic(err)
	}
	return r
}

// ConnectFunc returns a remote database handle using a custom dialer. The
// dialer is called whenever the pool has no idle connection; a dialer that
// can block should keep its own timeout, as it is not handed the request
// context.
//
// It is a wrapper for Dial(SingleFunc(...), opts...), kept as a documented
// alias.
func ConnectFunc(dial func() (net.Conn, error), opts ...Option) *Remote {
	r, err := Dial(SingleFunc(func(context.Context) (net.Conn, error) { return dial() }), opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// ConnectReplicas returns a remote database handle over N replica
// endpoints serving the same data. Each replica keeps its own connection
// pool, retry policy, and circuit breaker (built from the shared option
// list); a health-weighted balancer assigns every stream to a replica at
// execution time, and — with WithResume enabled — a stream whose replica
// dies mid-flight resumes there first, then fails over to another healthy
// replica, splicing the continuation in byte-identically (see
// WithFailover). When every replica is open-circuit, requests fail closed
// with ErrNoHealthyReplica. A single address behaves like ConnectTCP.
//
// It is a wrapper for Dial(Replicas(addrs...), opts...), kept as a
// documented alias.
func ConnectReplicas(addrs []string, opts ...Option) *Remote {
	if len(addrs) == 0 {
		panic("silkroute: ConnectReplicas needs at least one address")
	}
	r, err := Dial(Replicas(addrs...), opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// Close releases the connection pool. In-flight requests finish on their
// own connections; new requests fail.
func (r *Remote) Close() error { return r.client.Close() }

// IdleConns reports how many pooled connections are currently idle —
// useful for verifying that cancellation released everything.
func (r *Remote) IdleConns() int { return r.client.IdleConns() }

// ParseRemoteView compiles an RXL view against a remote database. The
// schema is the *source description* the paper's middleware keeps locally:
// relations, keys, and the foreign-key totality constraints that drive
// edge labeling — the data itself stays on the server. A nil schema falls
// back to the connection's WithSource description.
func ParseRemoteView(r *Remote, s *Schema, src string, opts ...Option) (*View, error) {
	if s == nil {
		if s = r.source; s == nil {
			return nil, errors.New("silkroute: ParseRemoteView: no source description — pass a schema or dial with WithSource")
		}
	}
	q, err := rxl.Parse(src)
	if err != nil {
		return nil, err
	}
	tree, err := viewtree.Build(q, s.s)
	if err != nil {
		return nil, err
	}
	v := &View{remote: r, tree: tree, wrapper: "document", reduce: true}
	buildConfig(opts).apply(v)
	return v, nil
}

// TPCHSourceDescription returns the source description of the built-in
// TPC-H fragment schema, for middleware instances that evaluate views
// against a remote TPC-H server.
func TPCHSourceDescription() *Schema {
	return &Schema{s: tpchSchemaForRemote()}
}
